"""E21 — multi-tenant serving: fairness, tail latency and coalescing.

Paper claim: the platform is a shared front door for "millions of users"
over one Copernicus catalogue, so tenant isolation is a serving-layer
property, not an afterthought. Expected shape: under the same seeded
open-loop workload (Zipf(1.5) tenant skew, diurnal swell, flash bursts,
~6x capacity offered at the mean), the gateway — per-tenant token-bucket
quotas, weighted-fair queueing, the E18 bulkhead and request coalescing —
keeps Jain's fairness index over per-tenant goodput near 1.0 and p99
within the deadline, while the unprotected FIFO collapses to the offered
(abusive) distribution: Jain below 0.5 and p99 two orders of magnitude
past the deadline. Coalescing measurably cuts duplicate backend
executions on top.
"""

import pytest

from benchmarks.conftest import emit_bench_snapshot, print_series
from repro.obs import Observability
from repro.serving import ServingSoakConfig, run_comparison, run_serving_soak

SEED = 21


def soak_config(requests: int = 120_000) -> ServingSoakConfig:
    return ServingSoakConfig(seed=SEED, requests=requests)


def test_e21_serving_fairness(benchmark):
    """Same abusive workload, gateway on vs off: Jain, p99, duplicates."""
    results = {}
    obs = Observability()

    def sweep():
        bare, guarded = run_comparison(soak_config(), obs=obs)
        results["bare"] = bare
        results["protected"] = guarded
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    bare, protected = results["bare"], results["protected"]
    rows = []
    for label, report in (("unprotected", bare), ("protected", protected)):
        summary = report.summary()
        rows.append(
            {"config": label, "arrivals": report.arrivals, "ok": report.ok,
             "late": int(summary["late"]), "shed": int(summary["shed"]),
             "quota": int(summary["quota_rejected"]),
             "coalesced": report.coalesced,
             "executions": report.executions,
             "jain": report.jain_goodput,
             "p99_s": report.p99_latency_s}
        )
    print_series(
        "E21: serving soak (8 Zipf tenants, ~6x capacity offered, seed 21)",
        rows,
    )
    benchmark.extra_info["jain_protected"] = round(protected.jain_goodput, 4)
    benchmark.extra_info["jain_unprotected"] = round(bare.jain_goodput, 4)
    benchmark.extra_info["p99_protected_s"] = round(
        protected.p99_latency_s, 4
    )
    benchmark.extra_info["p99_unprotected_s"] = round(bare.p99_latency_s, 4)
    benchmark.extra_info["duplicate_executions_avoided"] = (
        protected.duplicate_executions_avoided
    )
    emit_bench_snapshot(
        "E21",
        obs,
        meta={
            "jain_protected": protected.jain_goodput,
            "jain_unprotected": bare.jain_goodput,
            "p99_protected_s": protected.p99_latency_s,
            "p99_unprotected_s": bare.p99_latency_s,
            "duplicate_executions_avoided": (
                protected.duplicate_executions_avoided
            ),
            "executions_protected": protected.executions,
            "executions_unprotected": bare.executions,
        },
    )
    # Shape: the acceptance criteria of E21.
    assert protected.jain_goodput >= 0.9
    assert bare.jain_goodput < 0.5
    assert protected.p99_latency_s < bare.p99_latency_s
    # Coalescing engaged and saved real backend work.
    assert protected.duplicate_executions_avoided > 0
    assert protected.executions < bare.executions
    # The controls actually fired (this is not a vacuous comparison).
    assert protected.total("quota_rejected") > 0
    assert protected.total("shed") > 0


def test_e21_determinism(benchmark):
    """The soak is bit-for-bit reproducible: same config, same report."""
    results = {}

    def sweep():
        config = soak_config(requests=8000)
        results["first"] = run_serving_soak(config, protected=True)
        results["second"] = run_serving_soak(config, protected=True)
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    first, second = results["first"], results["second"]
    first.verify()
    assert first.summary() == second.summary()
    assert first.latencies_s == second.latencies_s
    assert first.tenant_rows() == second.tenant_rows()
