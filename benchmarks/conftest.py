"""Shared helpers for the experiment benches.

Every bench records its headline series in ``benchmark.extra_info`` so the
shape results (who wins, by what factor, where crossovers fall) appear in the
pytest-benchmark JSON/console output alongside the timings, and prints a
small table for EXPERIMENTS.md. Benches that carry a ``repro.obs``
Observability bundle also drop a ``BENCH_<NAME>.json`` snapshot (into
``$REPRO_OBS_DIR``, default cwd) via :func:`emit_bench_snapshot`; CI
validates that file in the observability smoke step.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional


def emit_bench_snapshot(name: str, obs, meta: Optional[Dict] = None) -> str:
    """Write *obs* to the bench's ``BENCH_<NAME>.json``; returns the path."""
    from repro.obs import bench_snapshot_path, write_snapshot

    path = write_snapshot(bench_snapshot_path(name), obs, meta)
    print(f"\n[obs] snapshot written: {path}")
    return path


def print_series(title: str, rows: Iterable[Dict]) -> None:
    """Render a result series as an aligned console table."""
    rows = list(rows)
    if not rows:
        return
    headers = list(rows[0].keys())
    widths = {
        h: max(len(str(h)), *(len(_fmt(r[h])) for r in rows)) for h in headers
    }
    print(f"\n== {title} ==")
    print("  " + "  ".join(str(h).ljust(widths[h]) for h in headers))
    for row in rows:
        print("  " + "  ".join(_fmt(row[h]).ljust(widths[h]) for h in headers))


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}"
    return str(value)
