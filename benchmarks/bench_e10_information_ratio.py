"""E10 — the variety claim: raw archive bytes vs extracted information.

Paper claim: "1PB of Sentinel data may consist of about 750,000 datasets
which, when processed, about 450TB of content information and knowledge
(e.g., classes of objects detected) can be generated" — i.e. a mean product
size of ~1.4 GB and an information-extraction ratio of ~0.45. Expected
shape: our synthetic archive reproduces the product-size statistic, and the
pipeline's materialised information (class maps + quantised probability
rasters + RDF knowledge) lands in the same regime — a large fraction of the
raw volume, below 1, with the exact value set by the mission mix.
"""

import pytest

from benchmarks.conftest import print_series
from repro.apps.foodsecurity.cropmap import build_crop_classifier
from repro.apps.polar.seaice import build_ice_classifier
from repro.pipeline import ExtremeEarthPipeline
from repro.raster import ProductArchive, sea_ice_field, sentinel1_scene
from repro.raster.sentinel import landcover_field, sentinel2_scene


def test_e10_archive_statistics(benchmark):
    """The 750,000-datasets-per-PB statistic on the synthetic archive."""

    def stats():
        products = ProductArchive(seed=5).generate(3000)
        total = ProductArchive.total_bytes(products)
        return total / len(products)

    mean_size = benchmark(stats)
    datasets_per_pb = 1e15 / mean_size
    print_series(
        "E10: archive statistics",
        [
            {"metric": "mean product size (GB)", "value": mean_size / 1e9,
             "paper": 1e15 / 750_000 / 1e9},
            {"metric": "datasets per PB", "value": datasets_per_pb, "paper": 750_000},
        ],
    )
    benchmark.extra_info["datasets_per_pb"] = round(datasets_per_pb)
    # Same order of magnitude as the paper's 750k/PB.
    assert 300_000 < datasets_per_pb < 1_500_000


def test_e10_information_extraction_ratio(benchmark):
    """The 450 TB / 1 PB ~ 0.45 information ratio over a mixed scene stream."""
    ice_model = build_ice_classifier(seed=1)
    crop_model = build_crop_classifier(num_classes=8, seed=2)

    def process():
        pipeline = ExtremeEarthPipeline(metadata_shards=4)
        # Mission mix roughly follows the archive: ~45% S1, ~55% optical.
        for seed in range(2):
            truth = sea_ice_field(64, 64, seed=seed, ice_extent=0.5)
            pipeline.process_polar_scene(
                sentinel1_scene(truth, seed=seed, looks=8), ice_model
            )
        for seed in range(3):
            land = landcover_field(64, 64, seed=seed)
            pipeline.process_agri_scene(
                sentinel2_scene(land, seed=seed), crop_model
            )
        return pipeline

    pipeline = benchmark.pedantic(process, rounds=1, iterations=1)
    ratio = pipeline.information_ratio()
    print_series(
        "E10: information extraction",
        [
            {"quantity": "raw bytes", "value": pipeline.raw_bytes},
            {"quantity": "information+knowledge bytes", "value": pipeline.information_bytes},
            {"quantity": "ratio (ours)", "value": ratio},
            {"quantity": "ratio (paper)", "value": 0.45},
        ],
    )
    benchmark.extra_info["information_ratio"] = round(ratio, 3)
    # Shape: a substantial fraction of raw volume, below 1 — the paper's
    # regime. The exact value tracks the mission mix.
    assert 0.2 < ratio < 0.9
