"""E22 — columnar SPARQL execution vs the interpreted iterator model.

Paper claim: interactive Copernicus analytics needs the local store to answer
multi-join analytical queries over hundreds of thousands of triples at
interactive latency — the gap Strabon papers close with columnar/bulk
execution over dictionary-encoded ids. Expected shape: the vector engine's
advantage grows with data size (per-solution Python dict overhead vs flat
numpy id-arrays), reaching >= 5x on a five-pattern join + filter over a
>= 100k-triple graph, while returning byte-identical solution multisets at
every size (parity is asserted, not assumed) — including through the
GeoStore's spatial-candidate plans, where the candidate scan runs via the
interpreted fallback and still feeds vectorized joins.
"""

import random
import time

import pytest

from benchmarks.conftest import emit_bench_snapshot, print_series
from repro.geometry import Point, Polygon
from repro.geosparql import GeoStore, geometry_literal
from repro.obs import Observability
from repro.rdf import GEO, Graph, Literal, Namespace
from repro.sparql import CompileOptions, evaluate

SEED = 22

EX = Namespace("http://ex.org/")
PREFIX = "PREFIX ex: <http://ex.org/> "

#: Product counts for the scaling sweep; each product contributes 4 triples
#: (category, supplier, price, stock) on top of ~70 dimension triples, so
#: the last point is a ~120k-triple graph.
PRODUCT_COUNTS = (500, 2_500, 12_500, 30_000)

ANALYTICAL_QUERY = (
    PREFIX + "SELECT ?p ?r ?k ?v WHERE { "
    "?p ex:cat ?c . ?c ex:region ?r . "
    "?p ex:supplier ?s . ?s ex:country ?k . "
    "?p ex:price ?v . FILTER(?v >= 750) }"
)

INTERPRETED = CompileOptions(engine="interpreted")
VECTOR = CompileOptions(engine="vector")


def build_graph(products: int) -> Graph:
    rng = random.Random(SEED)
    graph = Graph()
    categories, suppliers = 20, 50
    for c in range(categories):
        graph.add(EX[f"cat{c}"], EX.region, EX[f"region{c % 5}"])
    for s in range(suppliers):
        graph.add(EX[f"sup{s}"], EX.country, EX[f"country{s % 7}"])
    for i in range(products):
        product = EX[f"prod{i}"]
        graph.add(product, EX.cat, EX[f"cat{rng.randrange(categories)}"])
        graph.add(product, EX.supplier, EX[f"sup{rng.randrange(suppliers)}"])
        graph.add(product, EX.price, Literal.from_python(rng.randrange(1000)))
        graph.add(product, EX.stock, Literal.from_python(rng.randrange(100)))
    return graph


def canonical(result):
    return sorted(
        sorted((v.name, str(t)) for v, t in row.items()) for row in result
    )


def timed(graph, query, options, passes, obs=None):
    best, result = None, None
    for _ in range(passes):
        start = time.perf_counter()
        result = evaluate(graph, query, options=options, obs=obs)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def test_e22_vector_vs_interpreted(benchmark):
    """Scaling sweep: parity at every size, >= 5x speedup at >= 100k triples."""
    obs = Observability()
    series = []
    parity_checked = parity_equal = 0
    for products in PRODUCT_COUNTS:
        graph = build_graph(products)
        # Best-of-N steady state: the first vector pass pays the one-time
        # per-graph setup (id-table snapshot, lazy codec fill); best-of
        # keeps the comparison to the per-query cost both engines repeat.
        passes = 3 if products <= 2_500 else 2
        interpreted_s, interpreted_result = timed(
            graph, ANALYTICAL_QUERY, INTERPRETED, passes
        )
        vector_s, vector_result = timed(
            graph, ANALYTICAL_QUERY, VECTOR, passes, obs=obs
        )
        parity_checked += 1
        if canonical(interpreted_result) == canonical(vector_result):
            parity_equal += 1
        series.append(
            {
                "triples": len(graph),
                "rows": len(vector_result),
                "interpreted_s": interpreted_s,
                "vector_s": vector_s,
                "speedup": interpreted_s / vector_s,
            }
        )
    print_series("E22: vector vs interpreted (5-pattern join + filter)", series)

    assert parity_equal == parity_checked, "engines disagreed on a multiset"
    at_scale = series[-1]
    assert at_scale["triples"] >= 100_000
    assert at_scale["speedup"] >= 5.0, at_scale

    # Correlated-OPTIONAL fallback: semantics preserved by falling back to
    # interpreted evaluation for the join; the counter proves the path ran.
    graph = build_graph(500)
    correlated = (
        PREFIX + "SELECT ?p ?t WHERE { ?p ex:price ?v . "
        "OPTIONAL { ?p ex:stock ?t . FILTER(?v > 500) } }"
    )
    fallback_interp = evaluate(graph, correlated, options=INTERPRETED)
    fallback_vector = evaluate(graph, correlated, options=VECTOR, obs=obs)
    parity_checked += 1
    parity_equal += canonical(fallback_interp) == canonical(fallback_vector)

    # Spatial plans: the R-tree candidate scan is a custom operator (vector
    # engine runs it through the interpreted fallback, joins stay columnar).
    store = GeoStore()
    rng = random.Random(SEED)
    for i in range(400):
        store.add(
            EX[f"f{i}"],
            GEO.asWKT,
            geometry_literal(Point(rng.uniform(0, 50), rng.uniform(0, 50))),
        )
        store.add(EX[f"f{i}"], EX.id, Literal.from_python(i))
    box = geometry_literal(Polygon.box(10, 10, 30, 30))
    spatial_query = (
        PREFIX
        + "PREFIX geo: <http://www.opengis.net/ont/geosparql#> "
        + "PREFIX geof: <http://www.opengis.net/def/function/geosparql/> "
        + "SELECT ?f ?i WHERE { ?f geo:asWKT ?g . ?f ex:id ?i . "
        + f'FILTER(geof:sfIntersects(?g, "{box.lexical}"^^geo:wktLiteral)) }}'
    )
    spatial_interp = store.query(spatial_query, options=INTERPRETED)
    spatial_vector = store.query(spatial_query, options=VECTOR)
    parity_checked += 1
    parity_equal += canonical(spatial_interp) == canonical(spatial_vector)
    assert parity_equal == parity_checked

    mid_graph = build_graph(2_500)
    benchmark(lambda: evaluate(mid_graph, ANALYTICAL_QUERY, options=VECTOR))

    counter_records = obs.metrics.snapshot()["counters"]
    fallback_ops = sum(
        record["value"]
        for record in counter_records
        if record["name"] == "sparql.vector.fallback_ops"
    )
    assert fallback_ops > 0, "correlated OPTIONAL did not take the fallback"
    emit_bench_snapshot(
        "E22",
        obs,
        meta={
            "series": series,
            "speedup_at_scale": at_scale["speedup"],
            "triples_at_scale": at_scale["triples"],
            "parity_checked": parity_checked,
            "parity_equal": parity_equal,
            "spatial_rows": len(spatial_vector),
            "fallback_ops": fallback_ops,
        },
    )


def test_e22_cost_order_uses_index_statistics():
    """The cost model must start the join from the smallest real extent,
    not the shape heuristic's guess (all patterns here share one shape)."""
    from repro.sparql.ast import TriplePattern, Variable
    from repro.sparql.vector import order_patterns_by_cost

    graph = build_graph(2_000)
    broad = TriplePattern(Variable("p"), EX.cat, Variable("c"))  # 2000
    narrow = TriplePattern(Variable("c"), EX.region, Variable("r"))  # 20
    ordered = order_patterns_by_cost([broad, narrow], graph)
    assert ordered[0] is narrow
